//! End-to-end device-health telemetry: a fleet with one silently
//! throttled GPU must keep producing byte-identical results while the
//! recalibrating profile db + drift detector shift placements off the
//! sick node, and every surface — audit log `health=` column,
//! `haocl_device_health` metric, `haocl-top` snapshot — records the
//! verdict.

use haocl::auto::AutoScheduler;
use haocl::{
    Buffer, CommandQueue, Context, DeviceType, Kernel, MemFlags, NodeCondition, NodeId, Platform,
    Program,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry, NdRange};
use haocl_obs::FleetSnapshot;
use haocl_sched::policies;

const LANES: u64 = 32;

/// Order-sensitive step: `k` applications are distinguishable from
/// `k±1`, so equal bytes prove equal completed counts.
const SRC: &str =
    "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

struct Fleet {
    platform: Platform,
    auto: AutoScheduler,
    kernel: Kernel,
    buffer: Buffer,
    staging: CommandQueue,
}

fn fleet() -> Fleet {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    platform.set_tracing(true);
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let staging = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let program = Program::from_source(&ctx, SRC);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "churn").unwrap();
    kernel.set_cost(CostModel::new().flops(1e9).bytes_read(4.0 * LANES as f64));
    let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES).unwrap();
    kernel.set_arg_buffer(0, &buffer).unwrap();
    Fleet {
        platform,
        auto,
        kernel,
        buffer,
        staging,
    }
}

impl Fleet {
    /// One placed launch; returns the chosen node.
    fn step(&self) -> NodeId {
        let (_, choice) = self
            .auto
            .launch(&self.kernel, NdRange::linear(LANES, 1))
            .unwrap();
        self.auto.queues()[choice].device().node_id()
    }

    fn readback(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; 4 * LANES as usize];
        self.staging
            .enqueue_read_buffer(&self.buffer, 0, &mut bytes)
            .unwrap();
        self.staging.finish();
        bytes
    }
}

/// Runs the demo schedule on one fleet: healthy probing, optional
/// throttle injection on node 1, detection probing, then free placement.
/// Returns (final bytes, total launches, post-detection sick placements).
fn run_schedule(throttle: bool) -> (Vec<u8>, usize, usize) {
    let mut f = fleet();
    let sick = NodeId::new(1);
    // Healthy probing freezes each node's drift baseline.
    f.auto.set_policy(Box::new(policies::RoundRobin::new()));
    let mut launches = 0;
    for _ in 0..12 {
        f.step();
        launches += 1;
    }
    if throttle {
        // Device 0 of node 1 silently runs 3x slow from here on — its
        // descriptor still advertises full speed.
        f.platform.set_device_throttle(sick, 0, 3.0).unwrap();
    }
    // A fixed probing block (same length in both variants, so the two
    // schedules stay byte-comparable) gives the detector its strikes.
    for _ in 0..30 {
        f.step();
        launches += 1;
    }
    // Free placement: the policy sees the advisory penalty.
    f.auto.set_policy(Box::new(policies::HeteroAware::new()));
    let mut on_sick = 0;
    for _ in 0..12 {
        if f.step() == sick {
            on_sick += 1;
        }
        launches += 1;
    }

    if throttle {
        assert!(
            f.auto.drift().is_degraded(sick),
            "drift detector must flag the throttled node"
        );
        assert_eq!(
            f.auto.quarantine().condition(sick),
            NodeCondition::Degraded,
            "the verdict is advisory, not a hard quarantine"
        );
        let audit = f.platform.render_audit_log();
        assert!(
            audit.contains("policy=drift"),
            "drift transitions must land in the audit log:\n{audit}"
        );
        assert!(
            audit.contains("health=degraded("),
            "audit health= column must carry degraded verdicts:\n{audit}"
        );
        let metrics = f.platform.render_metrics();
        assert!(
            metrics.contains("haocl_device_health{node=\"gpu1\"} 1"),
            "health gauge must export the degraded verdict:\n{metrics}"
        );
        assert!(
            metrics.contains("haocl_device_health{node=\"gpu0\"} 0"),
            "healthy peers stay at 0:\n{metrics}"
        );
        assert!(metrics.contains("haocl_degraded_placements_avoided_total{node=\"gpu1\"}"));
        // The haocl-top snapshot reflects the same state.
        let snap = FleetSnapshot::from_text(&metrics, &audit);
        assert!(snap.any_unhealthy());
        let sick_row = snap.nodes.iter().find(|n| n.node == "gpu1").unwrap();
        assert_eq!(sick_row.health, "degraded");
        assert!(snap.drift_transitions >= 1);
        assert!(snap.to_json().contains("\"health\":\"degraded\""));
    } else {
        let metrics = f.platform.render_metrics();
        assert!(
            !metrics.contains("haocl_device_health{node=\"gpu1\"} 1"),
            "healthy fleet must not flag anyone:\n{metrics}"
        );
    }
    (f.readback(), launches, on_sick)
}

#[test]
fn throttled_node_is_flagged_avoided_and_results_stay_byte_identical() {
    let (sick_bytes, sick_launches, on_sick) = run_schedule(true);
    assert_eq!(
        on_sick, 0,
        "post-detection placements must shift off the sick node"
    );
    // The healthy fleet runs the same fixed schedule; with identical
    // launch counts the outputs must match byte for byte — degradation
    // may slow a device down, never change results.
    let (healthy_bytes, healthy_launches, _) = run_schedule(false);
    assert_eq!(sick_launches, healthy_launches);
    assert_eq!(
        sick_bytes, healthy_bytes,
        "placement shifts must not change workload output"
    );
}

#[test]
fn recalibration_counter_tracks_warm_profile_updates() {
    let mut f = fleet();
    f.auto.set_policy(Box::new(policies::RoundRobin::new()));
    for _ in 0..12 {
        f.step();
    }
    let metrics = f.platform.render_metrics();
    assert!(
        metrics.contains("haocl_profile_recalibrations_total"),
        "warm launches must surface recalibrations:\n{metrics}"
    );
}

/// Registry-backed churn step so the same kernel runs on the FPGA (which
/// cannot build from source) and the GPU alike.
struct Churn;

impl haocl_kernel::NativeKernel for Churn {
    fn name(&self) -> &str {
        "churn"
    }

    fn arity(&self) -> usize {
        1
    }

    fn execute(
        &self,
        _args: &[haocl_kernel::ArgValue],
        buffers: &mut [haocl_kernel::GlobalBuffer],
        range: &NdRange,
    ) -> Result<haocl_kernel::ExecStats, haocl_kernel::ExecError> {
        let n = (range.total_items() as usize).min(buffers[0].len() / 4);
        let bytes = buffers[0].as_bytes_mut();
        for i in 0..n {
            let mut lane = [0u8; 4];
            lane.copy_from_slice(&bytes[4 * i..4 * i + 4]);
            let v = i32::from_le_bytes(lane)
                .wrapping_mul(3)
                .wrapping_add(i as i32);
            bytes[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(haocl_kernel::ExecStats::default())
    }
}

#[test]
fn currency_rates_export_once_profiles_warm_across_classes() {
    // A hetero fleet warms both classes on the same kernel, which is
    // exactly what the exchange-rate table needs.
    let registry = KernelRegistry::new();
    registry.register(std::sync::Arc::new(Churn));
    let platform = Platform::cluster(&ClusterConfig::hetero_cluster(1, 1), registry).unwrap();
    platform.set_tracing(true);
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
    let program = Program::with_bitstream_kernels(&ctx, ["churn"]);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "churn").unwrap();
    kernel.set_cost(CostModel::new().flops(1e9).bytes_read(4.0 * LANES as f64));
    let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES).unwrap();
    kernel.set_arg_buffer(0, &buffer).unwrap();
    for _ in 0..8 {
        auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
    }
    let metrics = platform.render_metrics();
    assert!(
        metrics.contains("haocl_compute_currency_rate_milli{kind=\"GPU\"} 1000"),
        "base class exports rate 1.0:\n{metrics}"
    );
    assert!(
        metrics.contains("haocl_compute_currency_rate_milli{kind=\"FPGA\"}"),
        "sibling class exports its exchange rate:\n{metrics}"
    );
}
