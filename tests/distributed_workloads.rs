//! Integration: every Table I workload verifies on several cluster
//! shapes, through the full distributed stack.

use haocl::Platform;
use haocl_cluster::ClusterConfig;
use haocl_workloads::{registry_with_all, RunOptions, Workload};

fn verify_suite_on(config: &ClusterConfig) {
    let platform = Platform::cluster(config, registry_with_all()).unwrap();
    for workload in Workload::test_suite() {
        let report = workload.run(&platform, &RunOptions::full()).unwrap();
        assert_eq!(
            report.verified,
            Some(true),
            "{} on {:?}: {report}",
            workload.name(),
            config.nodes.len()
        );
    }
}

#[test]
fn suite_verifies_on_two_gpu_nodes() {
    verify_suite_on(&ClusterConfig::gpu_cluster(2));
}

#[test]
fn suite_verifies_on_four_gpu_nodes() {
    verify_suite_on(&ClusterConfig::gpu_cluster(4));
}

#[test]
fn suite_verifies_on_a_mixed_cluster() {
    verify_suite_on(&ClusterConfig::hetero_cluster(2, 2));
}

#[test]
fn suite_verifies_on_fpga_only_nodes() {
    // FPGA nodes can only run pre-built bitstream kernels; the drivers'
    // native mode goes through LoadBitstream.
    verify_suite_on(&ClusterConfig::fpga_cluster(2));
}

#[test]
fn suite_verifies_on_a_fat_multi_device_node() {
    let config =
        ClusterConfig::parse("host 10.0.0.1:7000\nnode fat0 10.0.9.1:7100 cpu,gpu,fpga\n").unwrap();
    verify_suite_on(&config);
}

#[test]
fn modeled_and_full_fidelity_agree_on_virtual_time() {
    // The same configuration must produce identical virtual makespans
    // whether kernels actually execute or only the models run — that is
    // the contract that makes paper-scale modeled benchmarking valid.
    use haocl_workloads::matmul::{self, MatmulConfig};
    let cfg = MatmulConfig { n: 64, seed: 5 };
    let time_with = |opts: &RunOptions| {
        let platform =
            Platform::cluster(&ClusterConfig::gpu_cluster(2), registry_with_all()).unwrap();
        matmul::run(&platform, &cfg, opts).unwrap().makespan
    };
    let full = time_with(&RunOptions {
        verify: false,
        ..RunOptions::full()
    });
    let modeled = time_with(&RunOptions::modeled());
    // Modeled transfers approximate real frames to within the per-message
    // envelope bytes (a few tens of bytes per call).
    let diff = (full.as_secs_f64() - modeled.as_secs_f64()).abs();
    assert!(
        diff / full.as_secs_f64() < 0.01,
        "full {full} vs modeled {modeled}"
    );
}

#[test]
fn snucl_baseline_is_never_faster_than_haocl() {
    use haocl_baselines::SnuClD;
    use haocl_workloads::matmul::MatmulConfig;
    let workload = Workload::MatrixMul(MatmulConfig::with_n(2048));
    for nodes in [1usize, 2, 4] {
        let config = ClusterConfig::gpu_cluster(nodes);
        let platform = Platform::cluster(&config, registry_with_all()).unwrap();
        let haocl_run = workload.run(&platform, &RunOptions::modeled()).unwrap();
        let snucl_run = SnuClD::new()
            .run(&config, &workload, &RunOptions::modeled())
            .unwrap();
        assert!(
            snucl_run.makespan >= haocl_run.makespan,
            "{nodes} nodes: SnuCL-D {} < HaoCL {}",
            snucl_run.makespan,
            haocl_run.makespan
        );
    }
}

#[test]
fn speedup_grows_with_gpu_nodes_for_matmul_at_scale() {
    use haocl_workloads::matmul::{self, MatmulConfig};
    let cfg = MatmulConfig::paper_scale();
    let opts = RunOptions {
        data_resident: true,
        ..RunOptions::modeled()
    };
    let mut prev = None;
    for nodes in [1usize, 2, 4, 8] {
        let platform =
            Platform::cluster(&ClusterConfig::gpu_cluster(nodes), registry_with_all()).unwrap();
        let makespan = matmul::run(&platform, &cfg, &opts).unwrap().makespan;
        if let Some(p) = prev {
            assert!(
                makespan < p,
                "{nodes} nodes ({makespan}) should beat {} ({p})",
                nodes / 2
            );
        }
        prev = Some(makespan);
    }
}
