//! Property tests for elastic membership: random interleavings of
//! launches, host writes/reads, drains and joins — optionally under
//! seeded network chaos — must keep every observable byte equal to a
//! trivial `Vec<u8>` reference model. A read that trusted a replica
//! left behind on a departed node (a stale epoch) would diverge from
//! the model immediately, so byte equality *is* the "no read from a
//! departed epoch" invariant.
//!
//! The same interleavings also audit the tenant quota ledger: buffers
//! are created through a serving-plane session, and however many of
//! their replicas die with drained nodes, the ledger must hold exactly
//! the live bytes mid-run and balance back to zero when the buffers
//! drop — a departed node's allocations are released exactly once.

use std::time::Duration;

use proptest::prelude::*;

use haocl::auto::AutoScheduler;
use haocl::{
    ChaosPolicy, ChaosSpec, CommandQueue, Context, Decision, DeviceKind, DeviceType, DrainOptions,
    Kernel, MembershipState, NodeSpec, Platform, Program, RecoveryPolicy, ServingPlane, TenantSpec,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{KernelRegistry, NdRange};
use haocl_sched::policies;

/// Buffer size in bytes: 8 int lanes.
const SIZE: usize = 32;
const LANES: usize = SIZE / 4;

/// Pure bitwise transform: device execution and the reference model
/// agree exactly, and `k` applications differ from `k±1`.
const SCRAMBLE_SRC: &str =
    "__kernel void scramble(__global int* a) { int i = get_global_id(0); a[i] = a[i] ^ (i + 1); }";

#[derive(Debug, Clone)]
enum Op {
    /// Scheduler-placed launch of `scramble` over buffer `buf`.
    Launch { buf: usize },
    /// `clEnqueueWriteBuffer` of `data` at `offset`.
    HostWrite {
        buf: usize,
        offset: usize,
        data: Vec<u8>,
    },
    /// `clEnqueueReadBuffer`, checked against the reference immediately.
    HostRead {
        buf: usize,
        offset: usize,
        len: usize,
    },
    /// Drain the `sel`-th active node (skipped when it is the last one).
    Drain { sel: usize },
    /// Join a fresh node and teach the running scheduler about it.
    Join,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2usize).prop_map(|buf| Op::Launch { buf }),
        (
            0..2usize,
            0..SIZE,
            proptest::collection::vec(any::<u8>(), 1..9)
        )
            .prop_map(|(buf, offset, data)| Op::HostWrite { buf, offset, data }),
        (0..2usize, 0..SIZE, 1..SIZE + 1).prop_map(|(buf, offset, len)| Op::HostRead {
            buf,
            offset,
            len
        }),
        (0..8usize).prop_map(|sel| Op::Drain { sel }),
        Just(Op::Join),
    ]
}

fn scramble_ref(model: &mut [u8]) {
    for i in 0..LANES {
        let mut v = i32::from_le_bytes(model[i * 4..i * 4 + 4].try_into().unwrap());
        v ^= (i + 1) as i32;
        model[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

fn node_hosts(config: &ClusterConfig) -> Vec<String> {
    config
        .nodes
        .iter()
        .map(|s| s.addr.split(':').next().unwrap_or(&s.addr).to_string())
        .collect()
}

/// Runs `ops` against a fresh 3-node fleet, checking every read against
/// the reference model and the ledger/final bytes at the end. `chaos`
/// toggles a lossy-network overlay (with retry + failover recovery).
fn check_against_reference(ops: &[Op], chaos_seed: Option<u64>) {
    let config = ClusterConfig::gpu_cluster(3);
    let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
    let chaotic = if let Some(seed) = chaos_seed {
        let spec = ChaosSpec::parse("drop=0.02,delay=0.05:200us,dup=0.02")
            .unwrap()
            .resolve_wildcards(&node_hosts(&config), seed);
        platform.install_chaos(ChaosPolicy::new(seed, spec));
        platform.set_recovery(Some(RecoveryPolicy {
            base_timeout: Duration::from_millis(10),
            max_attempts: 4,
            failover: true,
        }));
        true
    } else {
        false
    };
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let mut auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
    let session = plane.open_session(TenantSpec::new("drain-props"));
    // Host I/O rides whichever queue still fronts an Active node — a
    // queue pinned to a drained node refuses work, by design.
    let staging = |auto: &AutoScheduler| -> CommandQueue {
        auto.queues()
            .iter()
            .find(|q| {
                platform.node_membership(q.device().node_id()) == Some(MembershipState::Active)
            })
            .expect("at least one active node")
            .clone()
    };
    let prog = Program::from_source(&ctx, SCRAMBLE_SRC);
    prog.build().unwrap();
    let kernel = Kernel::new(&prog, "scramble").unwrap();
    let buffers = [
        session
            .create_buffer(haocl::MemFlags::READ_WRITE, SIZE as u64)
            .unwrap(),
        session
            .create_buffer(haocl::MemFlags::READ_WRITE, SIZE as u64)
            .unwrap(),
    ];
    let mut model = [vec![0u8; SIZE], vec![0u8; SIZE]];
    let mut joins = 0usize;

    for op in ops {
        match op {
            Op::Launch { buf } => {
                kernel.set_arg_buffer(0, &buffers[*buf]).unwrap();
                let (ev, _) = auto
                    .launch(&kernel, NdRange::linear(LANES as u64, 4))
                    .unwrap();
                ev.wait().unwrap();
                scramble_ref(&mut model[*buf]);
            }
            Op::HostWrite { buf, offset, data } => {
                let len = data.len().min(SIZE - offset);
                let data = &data[..len];
                staging(&auto)
                    .enqueue_write_buffer(&buffers[*buf], *offset as u64, data)
                    .unwrap();
                model[*buf][*offset..*offset + len].copy_from_slice(data);
            }
            Op::HostRead { buf, offset, len } => {
                let len = (*len).min(SIZE - offset);
                let mut out = vec![0u8; len];
                staging(&auto)
                    .enqueue_read_buffer(&buffers[*buf], *offset as u64, &mut out)
                    .unwrap();
                assert_eq!(out, model[*buf][*offset..*offset + len], "read {op:?}");
            }
            Op::Drain { sel } => {
                let active = platform.active_nodes();
                if active.len() < 2 {
                    continue;
                }
                let victim = active[sel % active.len()];
                // Under chaos a drain may fail mid-migration; it leaves
                // the node Draining (out of the candidate set, state
                // intact) and the interleaving moves on.
                match platform.drain_node(victim, DrainOptions::default()) {
                    Ok(_) => assert_eq!(
                        platform.node_membership(victim),
                        Some(MembershipState::Departed)
                    ),
                    Err(e) => {
                        assert!(chaotic, "clean-network drain failed: {e:?}");
                        assert_eq!(
                            platform.node_membership(victim),
                            Some(MembershipState::Draining)
                        );
                    }
                }
                // The newest bytes must have survived the departure.
                for (buf, model) in buffers.iter().zip(&model) {
                    let mut out = vec![0u8; SIZE];
                    staging(&auto)
                        .enqueue_read_buffer(buf, 0, &mut out)
                        .unwrap();
                    assert_eq!(&out, model, "drain of {victim:?} lost bytes");
                }
            }
            Op::Join => {
                joins += 1;
                let spec = NodeSpec {
                    name: format!("elastic{joins}"),
                    addr: format!("10.0.9.{joins}:7100"),
                    devices: vec![DeviceKind::Gpu],
                };
                platform.add_node(&spec).unwrap();
                assert_eq!(auto.sync_membership().unwrap(), 1);
            }
        }
        // Mid-run ledger invariant: exactly the live buffer bytes are
        // charged, no matter how many replicas drains have destroyed.
        assert_eq!(session.stats().unwrap().mem_bytes, 2 * SIZE as u64);
    }

    for q in auto.queues() {
        if platform.node_membership(q.device().node_id()) == Some(MembershipState::Active) {
            q.finish();
        }
    }
    for (buf, model) in buffers.iter().zip(&model) {
        let mut out = vec![0u8; SIZE];
        staging(&auto)
            .enqueue_read_buffer(buf, 0, &mut out)
            .unwrap();
        assert_eq!(&out, model, "final contents diverged from the reference");
    }

    // Pure voluntary departures must never quarantine anyone.
    if !chaotic {
        let metrics = platform.render_metrics();
        for line in metrics.lines() {
            if line.starts_with("haocl_quarantines_total") {
                assert!(line.ends_with(" 0"), "voluntary drains quarantined: {line}");
            }
        }
    }

    // The quota ledger balances: dropping the buffers releases every
    // charge exactly once, including allocations that died with a
    // departed node (their release is a no-op by design, not a leak).
    // The kernel's bound argument holds the last buffer handle.
    drop(kernel);
    drop(buffers);
    assert_eq!(session.stats().unwrap().mem_bytes, 0, "quota ledger leaked");
}

/// Exercises `Decision` linkage so the scaler can ride along a random
/// membership trajectory: ticking an idle fleet never scales below one
/// node, whatever the drains/joins did first.
fn scaler_never_underflows(platform: &Platform) {
    let mut scaler = haocl::Autoscaler::new(haocl::AutoscaleConfig {
        min_nodes: 1,
        ..haocl::AutoscaleConfig::default()
    });
    for _ in 0..12 {
        if platform.autoscale_tick(&mut scaler) == Decision::ScaleDown {
            let victim = platform
                .least_resident_node()
                .expect("ScaleDown implies a drainable node");
            platform
                .drain_node(victim, DrainOptions::default())
                .unwrap();
        }
        assert!(!platform.active_nodes().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn drain_join_interleavings_match_the_residency_model(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        check_against_reference(&ops, None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn drains_survive_lossy_chaos(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..12)
    ) {
        check_against_reference(&ops, Some(seed));
    }
}

#[test]
fn idle_autoscaling_never_drains_the_last_node() {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    platform.set_tracing(true);
    scaler_never_underflows(&platform);
    assert_eq!(platform.active_nodes().len(), 1);
}
