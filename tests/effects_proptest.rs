//! Effects-vs-oracle cross-check: the static per-argument effect
//! summaries ([`haocl_clc::EffectSummary`]) must **over-approximate**
//! the per-byte global-access sets the VM oracle
//! ([`haocl_clc::vm::run_ndrange_observed`]) observes at runtime —
//! never under-approximate. The fusion prover's soundness rests on
//! exactly this containment, so it is re-checked here over the whole
//! lint corpus plus the five paper workload kernel files, under
//! randomized launch shapes, buffer contents and scalar arguments.
//!
//! Checked invariants, per observed access on a global buffer:
//!
//! * **mode** — a store implies the argument's mode admits writes, a
//!   load implies it admits reads (`none` means no access, ever);
//! * **bounds** — when the summary carries element-offset bounds, the
//!   access's element range lies inside them;
//! * **patterns** — when the summary is `complete`, some recorded
//!   pattern of the same direction covers the access: an `Opaque` base
//!   covers anything (that is its job), while a constant or geometry
//!   base must evaluate — via the item's local id and group geometry —
//!   to exactly the observed element.
//!
//! Launches that fail (barrier divergence, out-of-bounds with hostile
//! scalars, …) are skipped: the oracle observes nothing, so there is
//! nothing to contain. The property asserts at least one kernel ran per
//! case so the corpus can never silently degrade to all-skips.

use haocl_clc::ast::ParamType;
use haocl_clc::vm::{run_ndrange_observed, ArgValue, CheckConfig, GlobalBuffer, NdRange};
use haocl_clc::{
    compile_with_options, AccessPattern, AddressSpace, AnalysisMode, CompileOptions,
    CompiledKernel, PatternBase, ScalarType,
};
use proptest::prelude::*;

/// Every source the summaries are cross-checked over: the lint corpus
/// (good and bad — bad kernels still carry summaries) plus the five
/// paper workloads' kernel files.
fn corpus() -> Vec<(String, String)> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/lint_corpus");
    let mut out = Vec::new();
    for sub in ["good", "bad"] {
        let mut paths: Vec<_> = std::fs::read_dir(format!("{root}/{sub}"))
            .expect("lint corpus directory")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "cl"))
            .collect();
        paths.sort();
        for p in paths {
            let src = std::fs::read_to_string(&p).expect("corpus file");
            out.push((p.display().to_string(), src));
        }
    }
    for (label, src) in [
        ("paper/bfs", haocl_workloads::bfs::KERNEL_SOURCE),
        ("paper/cfd", haocl_workloads::cfd::KERNEL_SOURCE),
        ("paper/knn", haocl_workloads::knn::KERNEL_SOURCE),
        ("paper/matmul", haocl_workloads::matmul::KERNEL_SOURCE),
        ("paper/spmv", haocl_workloads::spmv::KERNEL_SOURCE),
    ] {
        out.push((label.to_string(), src.to_string()));
    }
    out
}

/// Deterministic fill generator (the proptest seed feeds it, so cases
/// reproduce from the failure persistence file).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Binds plausible arguments for an arbitrary corpus kernel: every
/// global/constant pointer gets its own generously-sized buffer (so
/// index arithmetic like `i*n+j` stays in range), integer buffers are
/// filled with small non-negative values (so loaded-value gathers stay
/// in range too), and integer scalars all receive `n_val` (the "element
/// count" convention every corpus kernel follows). Returns the args,
/// the buffers, and the param-slot each buffer index is bound to.
fn bind_args(
    kernel: &CompiledKernel,
    range: &NdRange,
    seed: u64,
    n_val: i64,
) -> Option<(Vec<ArgValue>, Vec<GlobalBuffer>, Vec<usize>)> {
    let total = range.total_items();
    let local_total: u64 = range.local.iter().product();
    let elems = (total * total + 4 * total + 64) as usize;
    let cap = total.max(1);
    let mut rng = Lcg(seed | 1);
    let mut args = Vec::new();
    let mut buffers = Vec::new();
    let mut slots = Vec::new();
    for (slot, p) in kernel.params.iter().enumerate() {
        match *p {
            ParamType::Pointer(AddressSpace::Global | AddressSpace::Constant, st) => {
                let mut bytes = Vec::with_capacity(elems * st.size_bytes());
                for _ in 0..elems {
                    match st {
                        ScalarType::Bool => bytes.push((rng.next() & 1) as u8),
                        ScalarType::I32 => {
                            bytes.extend(((rng.next() % cap) as i32).to_le_bytes());
                        }
                        ScalarType::U32 => {
                            bytes.extend(((rng.next() % cap) as u32).to_le_bytes());
                        }
                        ScalarType::I64 => {
                            bytes.extend(((rng.next() % cap) as i64).to_le_bytes());
                        }
                        ScalarType::U64 => {
                            bytes.extend((rng.next() % cap).to_le_bytes());
                        }
                        ScalarType::F32 => {
                            bytes.extend(((rng.next() % 1000) as f32 / 250.0).to_le_bytes());
                        }
                        ScalarType::F64 => {
                            bytes.extend(
                                (f64::from((rng.next() % 1000) as u32) / 250.0).to_le_bytes(),
                            );
                        }
                    }
                }
                args.push(ArgValue::global(buffers.len()));
                buffers.push(GlobalBuffer::from_bytes(bytes));
                slots.push(slot);
            }
            ParamType::Pointer(AddressSpace::Local, st) => {
                args.push(ArgValue::local_bytes(
                    st.size_bytes() * (2 * local_total as usize + 8),
                ));
            }
            ParamType::Pointer(..) => return None,
            ParamType::Scalar(st) => args.push(match st {
                ScalarType::F32 => ArgValue::from_f32(0.5),
                ScalarType::F64 => ArgValue::from_f64(0.5),
                ScalarType::U32 => ArgValue::from_u32(n_val as u32),
                ScalarType::I64 => ArgValue::from_i64(n_val),
                ScalarType::U64 => ArgValue::from_u64(n_val as u64),
                _ => ArgValue::from_i32(n_val as i32),
            }),
        }
    }
    Some((args, buffers, slots))
}

/// The geometry an access pattern's symbols evaluate against for one
/// flat work-item id.
struct ItemGeom {
    lid: [u64; 3],
    gbase: [u64; 3],
    grp: [u64; 3],
}

fn item_geom(item: u64, range: &NdRange) -> ItemGeom {
    let g = range.global;
    let gid = [item % g[0], (item / g[0]) % g[1], item / (g[0] * g[1])];
    let mut lid = [0u64; 3];
    let mut gbase = [0u64; 3];
    let mut grp = [0u64; 3];
    for d in 0..3 {
        lid[d] = gid[d] % range.local[d];
        gbase[d] = gid[d] - lid[d];
        grp[d] = gid[d] / range.local[d];
    }
    ItemGeom { lid, gbase, grp }
}

/// Whether `pattern` covers an observed access at element `elem` by
/// work-item `item`. `Opaque` bases cover anything; constant and
/// geometry bases must evaluate to exactly `elem`.
fn pattern_covers(pattern: &AccessPattern, item: u64, elem: i64, range: &NdRange) -> bool {
    let geom = item_geom(item, range);
    let base = match pattern.base {
        PatternBase::Opaque => return true,
        PatternBase::Const(k) => k,
        PatternBase::Geom { id, add } => {
            let d = (id % 100) as usize;
            let val = match id {
                0..=2 => geom.gbase[d] as i64,
                100..=102 => geom.grp[d] as i64,
                200..=202 => range.global[d] as i64,
                300..=302 => range.local[d] as i64,
                400..=402 => (range.global[d] / range.local[d]) as i64,
                500 => i64::from(range.work_dim),
                // A geometry symbol this checker does not model: treat
                // the pattern as covering, like an opaque base.
                _ => return true,
            };
            val + add
        }
    };
    let linear: i64 = (0..3).map(|d| pattern.coeffs[d] * geom.lid[d] as i64).sum();
    base + linear == elem
}

/// Runs one corpus kernel under the oracle and checks containment.
/// Returns `Ok(false)` when the launch could not run (unbindable
/// params, or runtime failure under these random inputs).
fn check_kernel(
    label: &str,
    name: &str,
    kernel: &CompiledKernel,
    range: &NdRange,
    seed: u64,
    n_val: i64,
) -> Result<bool, TestCaseError> {
    let effects = &kernel.report.effects;
    prop_assert!(
        !effects.is_empty(),
        "{label}/{name}: compiled kernel carries no effect summary"
    );
    prop_assert_eq!(
        effects.args.len(),
        kernel.params.len(),
        "{}/{}: summary arity diverges from the signature",
        label,
        name
    );
    let Some((args, mut buffers, slots)) = bind_args(kernel, range, seed, n_val) else {
        return Ok(false);
    };
    let cfg = CheckConfig {
        max_instructions: 5_000_000,
        detect_races: false,
    };
    let Ok((_stats, obs)) = run_ndrange_observed(kernel, &args, &mut buffers, range, &cfg) else {
        return Ok(false);
    };
    for access in &obs.accesses {
        let slot = slots[access.buffer];
        let eff = &effects.args[slot];
        prop_assert!(
            if access.write {
                eff.mode.writes()
            } else {
                eff.mode.reads()
            },
            "{label}/{name}: arg {slot} mode `{}` misses an observed {} \
             (item {}, byte {})",
            eff.mode,
            if access.write { "store" } else { "load" },
            access.item,
            access.byte_off
        );
        prop_assert!(
            eff.elem_bytes > 0,
            "{label}/{name}: arg {slot} accessed but summarized with zero element size"
        );
        let eb = u64::from(eff.elem_bytes);
        let elem_first = (access.byte_off / eb) as i64;
        let elem_last = ((access.byte_off + u64::from(access.len) - 1) / eb) as i64;
        if let Some((lo, hi)) = eff.elem_bounds {
            prop_assert!(
                lo <= elem_first && elem_last <= hi,
                "{label}/{name}: arg {slot} bounds [{lo}..{hi}] miss observed \
                 elements {elem_first}..{elem_last} (item {})",
                access.item
            );
        }
        if eff.complete && u64::from(access.len) == eb {
            prop_assert!(
                eff.patterns
                    .iter()
                    .filter(|p| p.write == access.write)
                    .any(|p| pattern_covers(p, access.item, elem_first, range)),
                "{label}/{name}: arg {slot} complete pattern set {:?} misses an \
                 observed {} of element {} by item {}",
                eff.patterns,
                if access.write { "store" } else { "load" },
                elem_first,
                access.item
            );
        }
    }
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn summaries_over_approximate_the_vm_oracle(
        shape_sel in 0usize..4,
        seed in any::<u64>(),
        n_sel in 0usize..3,
    ) {
        let shapes = [
            NdRange::linear(16, 4),
            NdRange::linear(24, 8),
            NdRange::d2([8, 4], [4, 2]),
            NdRange::linear(8, 8),
        ];
        let range = shapes[shape_sel];
        let total = range.total_items() as i64;
        let n_val = [total, total / 2, 1][n_sel];
        let opts = CompileOptions { analysis: AnalysisMode::WarnOnly };
        let mut ran = 0usize;
        for (label, source) in corpus() {
            let program = compile_with_options(&source, &opts)
                .unwrap_or_else(|e| panic!("{label}: corpus must compile: {}", e.build_log()));
            let mut names: Vec<&str> = program.kernel_names().collect();
            names.sort_unstable();
            for name in names {
                let kernel = program.kernel(name).expect("listed kernel exists");
                ran += usize::from(check_kernel(&label, name, kernel, &range, seed, n_val)?);
            }
        }
        prop_assert!(ran > 0, "every corpus launch was skipped — the oracle saw nothing");
    }
}
