//! Elastic-membership scenario suite: the fleet grows and shrinks while
//! workloads run. Three end-to-end stories from the issue:
//!
//! 1. **Spot revocation** — a node leaves on a tight deadline; peer
//!    migration degrades to the host relay, and readbacks stay
//!    byte-identical to a fleet that never lost the node.
//! 2. **Traffic spike** — the metrics-driven autoscaler adds a node
//!    under sustained queue depth (shrinking the batch makespan) and
//!    drains it again once the fleet idles.
//! 3. **Rolling upgrade** — every node is drained and rejoined under
//!    its own name while traffic keeps flowing: zero lost launches,
//!    digests exactly matching a static fleet, and zero quarantines
//!    (voluntary epoch bumps earn no strikes).

use haocl::auto::AutoScheduler;
use haocl::{AutoscaleConfig, Autoscaler};
use haocl::{
    Buffer, CommandQueue, Context, Decision, DeviceKind, DeviceType, DrainOptions, DrainReport,
    Kernel, MemFlags, MembershipState, NodeCondition, NodeId, NodeSpec, Platform, Program,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry, NdRange};
use haocl_obs::FleetSnapshot;
use haocl_sched::policies;
use haocl_sim::SimDuration;

const LANES: u64 = 32;

/// Order-sensitive step: `k` applications of the map are
/// distinguishable from `k±1`, so equal bytes prove equal completed
/// launch counts regardless of where each launch was placed.
const SRC: &str =
    "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

fn gpu_spec(i: usize) -> NodeSpec {
    NodeSpec {
        name: format!("gpu{i}"),
        addr: format!("10.0.1.{}:7100", i + 1),
        devices: vec![DeviceKind::Gpu],
    }
}

// --- Scenario 1: spot-instance revocation ---------------------------------

/// Builds a 3-GPU fleet, dirties the buffer on the victim node (device
/// copy newest, host shadow stale), then optionally drains the victim.
/// Returns the final readback and the drain report.
fn spot_run(drain: Option<DrainOptions>) -> (Vec<u8>, Option<DrainReport>) {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    platform.set_tracing(true);
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let program = Program::from_source(&ctx, SRC);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "churn").unwrap();
    let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES).unwrap();
    kernel.set_arg_buffer(0, &buffer).unwrap();

    let victim = NodeId::new(1);
    let victim_dev = ctx
        .devices()
        .iter()
        .find(|d| d.node_id() == victim)
        .cloned()
        .unwrap();
    let queue = CommandQueue::new(&ctx, &victim_dev).unwrap();
    let init: Vec<u8> = (0..LANES as i32).flat_map(|i| i.to_le_bytes()).collect();
    queue.enqueue_write_buffer(&buffer, 0, &init).unwrap();
    queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(LANES, 1))
        .unwrap();
    queue.finish();

    let report = drain.map(|opts| platform.drain_node(victim, opts).unwrap());
    if report.is_some() {
        assert_eq!(
            platform.node_membership(victim),
            Some(MembershipState::Departed)
        );
        assert_eq!(
            platform.active_nodes(),
            vec![NodeId::new(0), NodeId::new(2)]
        );
    }

    let survivor = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let mut bytes = vec![0u8; 4 * LANES as usize];
    survivor
        .enqueue_read_buffer(&buffer, 0, &mut bytes)
        .unwrap();
    survivor.finish();
    (bytes, report)
}

#[test]
fn spot_revocation_migrates_or_relays_but_never_loses_bytes() {
    let (reference, _) = spot_run(None);

    // No deadline: the endangered buffer re-homes over the peer plane.
    let (peer_bytes, report) = spot_run(Some(DrainOptions::default()));
    let r = report.unwrap();
    assert_eq!(
        (r.peer_migrated, r.host_relayed),
        (1, 0),
        "unhurried drain must use the peer data plane: {r:?}"
    );
    assert!(!r.deadline_degraded);
    assert_eq!(r.bytes_evacuated, 4 * LANES);
    assert_eq!(peer_bytes, reference, "peer migration changed the bytes");

    // A spot revocation with no time budget: every migration degrades
    // to the one-hop host relay — and still loses nothing.
    let (relay_bytes, report) = spot_run(Some(DrainOptions::with_deadline(SimDuration::ZERO)));
    let r = report.unwrap();
    assert_eq!(
        (r.peer_migrated, r.host_relayed),
        (0, 1),
        "tight deadline must degrade to the host relay: {r:?}"
    );
    assert!(r.deadline_degraded);
    assert_eq!(relay_bytes, reference, "host relay changed the bytes");
}

// --- Scenario 2: traffic spike drives the autoscaler ----------------------

/// Launches `n` independent fill kernels (one private buffer each, so
/// batches parallelise across devices) and returns the virtual-time
/// makespan of the batch.
fn batch_makespan(platform: &Platform, ctx: &Context, auto: &AutoScheduler, n: usize) -> u64 {
    let program = Program::from_source(
        ctx,
        "__kernel void fill(__global int* a) { a[get_global_id(0)] = get_global_id(0); }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "fill").unwrap();
    kernel.set_cost(
        CostModel::new()
            .flops(1e9)
            .bytes_written(4.0 * LANES as f64),
    );
    let buffers: Vec<Buffer> = (0..n)
        .map(|_| Buffer::new(ctx, MemFlags::WRITE_ONLY, 4 * LANES).unwrap())
        .collect();
    let start = platform.clock().now();
    for b in &buffers {
        kernel.set_arg_buffer(0, b).unwrap();
        auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
    }
    for q in auto.queues() {
        q.finish();
    }
    platform
        .clock()
        .now()
        .saturating_duration_since(start)
        .as_nanos()
}

#[test]
fn traffic_spike_scales_up_then_idleness_scales_back_down() {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    platform.set_tracing(true);
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let mut auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
    let mut scaler = Autoscaler::new(AutoscaleConfig {
        high_depth: 4.0,
        low_depth: 1.0,
        sustain_ticks: 2,
        cooldown_ticks: 1,
        min_nodes: 1,
        max_nodes: 2,
    });

    let single_node_makespan = batch_makespan(&platform, &ctx, &auto, 6);

    // Sustained spike: a backlog deeper than `high_depth` on the lone
    // node. The queue-depth gauge carries it to the autoscaler.
    let program = Program::from_source(&ctx, SRC);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "churn").unwrap();
    let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES).unwrap();
    kernel.set_arg_buffer(0, &buffer).unwrap();
    for _ in 0..8 {
        auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
    }
    assert_eq!(platform.autoscale_tick(&mut scaler), Decision::Hold);
    assert_eq!(
        platform.autoscale_tick(&mut scaler),
        Decision::ScaleUp,
        "two sustained overload ticks must trigger a scale-up"
    );

    // Actuate: join gpu1, teach the running scheduler about it.
    let joined = platform.add_node(&gpu_spec(1)).unwrap();
    assert_eq!(
        platform.node_membership(joined),
        Some(MembershipState::Active)
    );
    assert_eq!(auto.sync_membership().unwrap(), 1);
    for q in auto.queues() {
        q.finish();
    }

    // The same batch now spreads over two nodes: strictly faster.
    let two_node_makespan = batch_makespan(&platform, &ctx, &auto, 6);
    assert!(
        two_node_makespan < single_node_makespan,
        "scale-up must shrink the batch makespan: {two_node_makespan} >= {single_node_makespan}"
    );

    // The fleet idles; the autoscaler asks for a scale-down within the
    // cooldown + sustain window, and the least-resident node drains.
    let mut down = false;
    for _ in 0..6 {
        if platform.autoscale_tick(&mut scaler) == Decision::ScaleDown {
            down = true;
            break;
        }
    }
    assert!(down, "an idle fleet must scale back down");
    let victim = platform.least_resident_node().unwrap();
    platform
        .drain_node(victim, DrainOptions::default())
        .unwrap();
    assert_eq!(platform.active_nodes().len(), 1);

    // Traffic keeps flowing on the shrunk fleet.
    auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
    for q in auto.queues() {
        q.finish();
    }

    // Both decisions left their audit + metric trail.
    let metrics = platform.render_metrics();
    assert!(
        metrics.contains("haocl_autoscale_events_total{direction=\"up\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("haocl_autoscale_events_total{direction=\"down\"} 1"),
        "{metrics}"
    );
    let audit = platform.render_audit_log();
    assert!(audit.contains("policy=autoscale"), "{audit}");
    let snap = FleetSnapshot::from_text(&metrics, &audit);
    assert_eq!(snap.autoscale_events, 2);
}

// --- Scenario 3: rolling upgrade ------------------------------------------

/// Drives `rotations.len() + 1` blocks of `block` launches; between
/// blocks, drains the named original node and rejoins a replacement
/// under the *same name*. Returns (bytes, launches, platform, scheduler).
fn rolling_run(rotate: bool) -> (Vec<u8>, usize, Platform, AutoScheduler) {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    platform.set_tracing(true);
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let mut auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
    let program = Program::from_source(&ctx, SRC);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "churn").unwrap();
    kernel.set_cost(CostModel::new().flops(1e9).bytes_read(4.0 * LANES as f64));
    let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES).unwrap();
    kernel.set_arg_buffer(0, &buffer).unwrap();

    let mut launches = 0;
    let block = |auto: &AutoScheduler, launches: &mut usize| {
        for _ in 0..8 {
            auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
            *launches += 1;
        }
        for q in auto.queues() {
            q.finish();
        }
    };

    block(&auto, &mut launches);
    for upgraded in 0..3u32 {
        if rotate {
            // Quiesce-free drain: in-flight work settled above, resident
            // state live-migrates, the node retires voluntarily, and a
            // replacement rejoins under the same name and address.
            platform
                .drain_node(NodeId::new(upgraded), DrainOptions::default())
                .unwrap();
            platform.add_node(&gpu_spec(upgraded as usize)).unwrap();
            assert_eq!(auto.sync_membership().unwrap(), 1);
        }
        block(&auto, &mut launches);
    }

    let staging = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let mut bytes = vec![0u8; 4 * LANES as usize];
    staging.enqueue_read_buffer(&buffer, 0, &mut bytes).unwrap();
    staging.finish();
    (bytes, launches, platform, auto)
}

#[test]
fn rolling_upgrade_loses_no_launches_and_keeps_digests_exact() {
    let (rolled, rolled_launches, platform, auto) = rolling_run(true);
    let (static_bytes, static_launches, ..) = rolling_run(false);

    // Zero lost launches: every launch on the rolling fleet succeeded
    // (the unwraps above), and the count matches the static fleet — so
    // byte equality proves the full workload completed exactly once.
    assert_eq!(rolled_launches, static_launches);
    assert_eq!(
        rolled, static_bytes,
        "a rolling upgrade must not change workload output"
    );

    // All three original nodes departed; their replacements are active.
    for old in 0..3u32 {
        assert_eq!(
            platform.node_membership(NodeId::new(old)),
            Some(MembershipState::Departed)
        );
    }
    let active = platform.active_nodes();
    assert_eq!(active, vec![NodeId::new(3), NodeId::new(4), NodeId::new(5)]);

    // Voluntary departures earn no strikes: nothing is quarantined, the
    // rejoined nodes carry no advisory ban, and the counter never moved.
    for &node in &active {
        assert_eq!(
            auto.quarantine().condition(node),
            NodeCondition::Healthy,
            "rejoined node {node:?} must start with a clean slate"
        );
        assert_eq!(platform.node_voluntary_epochs(node), 0);
    }
    let metrics = platform.render_metrics();
    for line in metrics.lines() {
        if line.starts_with("haocl_quarantines_total") {
            assert!(
                line.ends_with(" 0"),
                "voluntary drains must not quarantine: {line}"
            );
        }
    }

    // haocl-top sees the rejoins: each name's last transition is
    // `active`, and the rotation never counted as a placement.
    let snap = FleetSnapshot::from_text(&metrics, &platform.render_audit_log());
    for name in ["gpu0", "gpu1", "gpu2"] {
        let row = snap.nodes.iter().find(|n| n.node == name).unwrap();
        assert_eq!(row.state, "active", "{name} must end active after rejoin");
    }
}
