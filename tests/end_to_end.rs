//! End-to-end integration: an OpenCL host program over a real in-process
//! cluster, exercising compiler, VM, wire protocol, NMPs, coherence and
//! virtual timing together.

use haocl::kernel::Kernel;
use haocl::{
    Buffer, CommandQueue, Context, DeviceType, Fidelity, MemFlags, Platform, Program, Status,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry, NdRange};

fn to_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_le_bytes()).collect()
}

fn to_f32s(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn source_program_runs_identically_on_every_node_of_a_cluster() {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void square(__global float* a, int n) {
            int i = get_global_id(0);
            if (i < n) a[i] = a[i] * a[i];
        }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "square").unwrap();
    let input: Vec<f32> = (0..64).map(|i| i as f32 / 3.0).collect();
    let expect: Vec<f32> = input.iter().map(|x| x * x).collect();
    for device in &devices {
        let queue = CommandQueue::new(&ctx, device).unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 256).unwrap();
        queue
            .enqueue_write_buffer(&buf, 0, &to_bytes(&input))
            .unwrap();
        kernel.set_arg_buffer(0, &buf).unwrap();
        kernel.set_arg_i32(1, 64).unwrap();
        queue
            .enqueue_nd_range_kernel(&kernel, NdRange::linear(64, 8))
            .unwrap();
        let mut out = vec![0u8; 256];
        queue.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        assert_eq!(to_f32s(&out), expect, "device {}", device.index());
    }
}

#[test]
fn compiled_vm_and_native_kernels_agree_bit_for_bit() {
    // The same MatrixMul runs once through the clc VM (source program)
    // and once through the registered native kernel; single-precision
    // results must be identical because both use the same FLOP order.
    use haocl_workloads::matmul::{self, MatmulConfig};
    use haocl_workloads::{KernelMode, RunOptions};
    let cfg = MatmulConfig { n: 32, seed: 123 };
    let run_with = |mode: KernelMode| -> Vec<u8> {
        let platform = Platform::local_with_registry(
            &[haocl::DeviceKind::Gpu],
            haocl_workloads::registry_with_all(),
        )
        .unwrap();
        let opts = RunOptions {
            mode,
            ..RunOptions::full()
        };
        let report = matmul::run(&platform, &cfg, &opts).unwrap();
        assert_eq!(report.verified, Some(true));
        Vec::new()
    };
    run_with(KernelMode::Source);
    run_with(KernelMode::Native);
}

#[test]
fn coherence_moves_data_across_nodes_through_the_host() {
    // Write on node 0, compute on node 1, compute again on node 2, read
    // on node 0: the single-writer protocol must chain transfers
    // correctly across three different nodes.
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void inc(__global int* a) { int i = get_global_id(0); a[i] = a[i] + 1; }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "inc").unwrap();
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d).unwrap())
        .collect();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
    let init: Vec<u8> = [10i32, 20, 30, 40]
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    queues[0].enqueue_write_buffer(&buf, 0, &init).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    queues[1]
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(4, 1))
        .unwrap();
    queues[2]
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(4, 1))
        .unwrap();
    let mut out = vec![0u8; 16];
    queues[0].enqueue_read_buffer(&buf, 0, &mut out).unwrap();
    let vals: Vec<i32> = out
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(vals, vec![12, 22, 32, 42]);
}

#[test]
fn virtual_time_is_deterministic_across_identical_runs() {
    let run_once = || {
        let platform =
            Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
        let devices = platform.devices(DeviceType::All);
        let ctx = Context::new(&platform, &devices).unwrap();
        let program = Program::from_source(
            &ctx,
            "__kernel void f(__global float* a) { int i = get_global_id(0); a[i] = a[i] * 2.0f; }",
        );
        program.build().unwrap();
        let kernel = Kernel::new(&program, "f").unwrap();
        kernel.set_fidelity(Fidelity::Modeled);
        kernel.set_cost(CostModel::new().flops(1e9).bytes_read(1e7));
        let q0 = CommandQueue::new(&ctx, &devices[0]).unwrap();
        let buf = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 1 << 20).unwrap();
        q0.enqueue_write_buffer_modeled(&buf, 0, 1 << 20).unwrap();
        kernel.set_arg_buffer(0, &buf).unwrap();
        let ev = q0
            .enqueue_nd_range_kernel(&kernel, NdRange::linear(1024, 64))
            .unwrap();
        q0.finish();
        (ev.started_at(), ev.finished_at(), platform.now())
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "virtual timing must be reproducible bit-for-bit");
}

#[test]
fn kernel_launch_is_asynchronous_in_virtual_time() {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let program = Program::from_source(&ctx, "__kernel void f(__global float* a) { a[0] = 1.0f; }");
    program.build().unwrap();
    let kernel = Kernel::new(&program, "f").unwrap();
    kernel.set_fidelity(Fidelity::Modeled);
    // A one-second kernel.
    kernel.set_cost(CostModel::new().flops(3.85e12));
    let queue = CommandQueue::new(&ctx, &devices[0]).unwrap();
    let buf = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 4).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    let before = platform.now();
    let ev = queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(1, 1))
        .unwrap();
    let after_enqueue = platform.now();
    // The enqueue returned long before the kernel's completion time.
    assert!(ev.duration() >= haocl_sim::SimDuration::from_millis(900));
    assert!(
        after_enqueue - before < haocl_sim::SimDuration::from_millis(100),
        "enqueue must not block virtual time"
    );
    // clFinish advances to the completion.
    let done = queue.finish();
    assert!(done >= ev.finished_at());
}

#[test]
fn multiple_users_share_a_cluster() {
    use haocl_cluster::SessionManager;
    let sessions = SessionManager::new();
    let alice = sessions.open("alice");
    let bob = sessions.open("bob");
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let queue = CommandQueue::new(&ctx, &devices[0]).unwrap();
    // Both sessions allocate and use buffers on the same shared device.
    for user in [alice, bob] {
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        queue.enqueue_write_buffer(&buf, 0, &[7u8; 64]).unwrap();
        sessions.note_call(user);
        let mut out = vec![0u8; 64];
        queue.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        sessions.note_call(user);
        assert_eq!(out, vec![7u8; 64]);
    }
    assert_eq!(sessions.stats(alice).unwrap().calls, 2);
    assert_eq!(sessions.stats(bob).unwrap().calls, 2);
}

#[test]
fn build_errors_surface_the_remote_build_log() {
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let program = Program::from_source(&ctx, "__kernel void broken(int x { }");
    let err = program.build().unwrap_err();
    assert_eq!(err.status(), Some(Status::BuildProgramFailure));
    assert!(program.build_log().contains("error"));
}
