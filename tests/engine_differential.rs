//! Differential testing of the optimized execution engines against the
//! checked interpreter oracle.
//!
//! [`run_ndrange_checked`] always interprets, so it never depends on the
//! compiled paths it validates — that makes it the ground truth here.
//! Every engine must match it exactly: byte-identical output buffers,
//! identical [`ExecStats`], and identical structured errors. The corpus
//! is every good lint-corpus kernel plus the five paper benchmark
//! kernels, swept at their standard shapes and at proptest-randomized
//! shapes, inputs, and scalar arguments.
//!
//! The only tolerated divergence is an oracle verdict the optimized
//! engines cannot produce by design: `LocalRace` and `BudgetExhausted`
//! exist in checked mode only, so cases where the oracle reports them
//! are skipped rather than compared.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use haocl_clc::ast::ParamType;
use haocl_clc::vm::{
    run_ndrange_checked, run_ndrange_with_engine, ArgValue, CheckConfig, EngineKind, ExecErrorKind,
    ExecStats, GlobalBuffer, NdRange,
};
use haocl_clc::{compile, AddressSpace, CompiledKernel, CompiledProgram, ScalarType};
use proptest::prelude::*;

/// One compiled source under test.
struct Case {
    origin: String,
    program: CompiledProgram,
}

/// Every good-corpus file plus the five paper kernels, compiled once.
fn corpus() -> &'static Vec<Case> {
    static CORPUS: OnceLock<Vec<Case>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus/good");
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
            .map(|entry| entry.unwrap().path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "cl"))
            .collect();
        files.sort();
        let mut out = Vec::new();
        for path in files {
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push(Case {
                origin: path.display().to_string(),
                program: compile(&source).expect("good corpus builds"),
            });
        }
        for (name, source) in [
            ("matmul", haocl_workloads::matmul::KERNEL_SOURCE),
            ("spmv", haocl_workloads::spmv::KERNEL_SOURCE),
            ("bfs", haocl_workloads::bfs::KERNEL_SOURCE),
            ("knn", haocl_workloads::knn::KERNEL_SOURCE),
            ("cfd", haocl_workloads::cfd::KERNEL_SOURCE),
        ] {
            out.push(Case {
                origin: name.to_string(),
                program: compile(source).expect("paper kernel builds"),
            });
        }
        out
    })
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Synthesizes a launchable argument list: pseudo-random buffer bytes
/// derived from `seed` for pointers, `scalar` for every scalar
/// parameter. Out-of-range scalars and small buffers are fine — they
/// drive the error paths, which must also match across engines.
fn synth_args(
    kernel: &CompiledKernel,
    buf_bytes: usize,
    scalar: i64,
    seed: u64,
) -> (Vec<ArgValue>, Vec<GlobalBuffer>) {
    let mut state = seed ^ 0x5eed_cafe_f00d_d00d;
    let mut args = Vec::new();
    let mut buffers = Vec::new();
    for param in &kernel.params {
        match param {
            ParamType::Pointer(AddressSpace::Local, _) => {
                args.push(ArgValue::local_bytes(256));
            }
            ParamType::Pointer(_, _) => {
                args.push(ArgValue::global(buffers.len()));
                let mut bytes = vec![0u8; buf_bytes];
                for chunk in bytes.chunks_mut(8) {
                    let v = splitmix(&mut state).to_le_bytes();
                    chunk.copy_from_slice(&v[..chunk.len()]);
                }
                buffers.push(GlobalBuffer::from_bytes(bytes));
            }
            ParamType::Scalar(st) => args.push(match st {
                ScalarType::F32 => ArgValue::from_f32(scalar as f32),
                ScalarType::F64 => ArgValue::from_f64(scalar as f64),
                ScalarType::I64 => ArgValue::from_i64(scalar),
                ScalarType::U64 => ArgValue::from_u64(scalar as u64),
                ScalarType::U32 => ArgValue::from_u32(scalar as u32),
                _ => ArgValue::from_i32(scalar as i32),
            }),
        }
    }
    (args, buffers)
}

/// Runs `kernel` on the checked oracle and on every optimized engine
/// from identical starting buffers, and demands identical outcomes:
/// same `Ok(ExecStats)` or same `(ExecErrorKind, message)`, and on
/// success byte-identical buffer contents.
fn compare_engines(
    origin: &str,
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &[GlobalBuffer],
    range: &NdRange,
) -> Result<(), String> {
    let mut oracle_bufs = buffers.to_vec();
    let oracle = run_ndrange_checked(
        kernel,
        args,
        &mut oracle_bufs,
        range,
        &CheckConfig::default(),
    );
    if let Err(e) = &oracle {
        if matches!(
            e.kind(),
            ExecErrorKind::LocalRace | ExecErrorKind::BudgetExhausted
        ) {
            // Checked-mode-only verdicts; the plain engines run the
            // kernel without these oracles, so there is nothing to
            // compare against.
            return Ok(());
        }
    }
    let oracle_out: Result<ExecStats, (ExecErrorKind, String)> =
        oracle.map_err(|e| (e.kind(), e.to_string()));
    for engine in [EngineKind::CompiledSerial, EngineKind::Compiled] {
        let mut engine_bufs = buffers.to_vec();
        let got = run_ndrange_with_engine(kernel, args, &mut engine_bufs, range, engine)
            .map_err(|e| (e.kind(), e.to_string()));
        if got != oracle_out {
            return Err(format!(
                "{origin}: kernel `{}` on {engine:?} diverged from the oracle:\n  \
                 oracle: {oracle_out:?}\n  engine: {got:?}",
                kernel.name
            ));
        }
        if oracle_out.is_ok() {
            for (i, (want, have)) in oracle_bufs.iter().zip(&engine_bufs).enumerate() {
                if want.as_bytes() != have.as_bytes() {
                    return Err(format!(
                        "{origin}: kernel `{}` on {engine:?}: buffer {i} bytes \
                         diverge from the oracle",
                        kernel.name
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The shape each corpus kernel was written for (mirrors the
/// lint-corpus cross-check): square 2-D for the tiled kernels, one
/// linear group of 8 otherwise.
fn standard_range(kernel: &CompiledKernel) -> NdRange {
    match kernel.name.as_str() {
        "tiled_transpose" | "matmul" => NdRange::d2([4, 4], [4, 4]),
        _ => NdRange::linear(8, 8),
    }
}

#[test]
fn engines_match_oracle_at_standard_shapes() {
    for case in corpus() {
        for kernel in case.program.kernels() {
            let (args, buffers) = synth_args(kernel, 1 << 16, 4, 7);
            compare_engines(
                &case.origin,
                kernel,
                &args,
                &buffers,
                &standard_range(kernel),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

/// The five paper kernels with realistic inputs and their benchmark
/// launch geometry (scaled down so the sweep stays fast in debug).
#[test]
fn engines_match_oracle_on_paper_launches() {
    fn f32s(state: &mut u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| (splitmix(state) % 1000) as f32 / 100.0 + 0.5)
            .collect()
    }
    let mut state = 42u64;

    // MatrixMul 16x16.
    let n = 16usize;
    let mm = compile(haocl_workloads::matmul::KERNEL_SOURCE).expect("matmul compiles");
    let buffers = vec![
        GlobalBuffer::from_f32(&f32s(&mut state, n * n)),
        GlobalBuffer::from_f32(&f32s(&mut state, n * n)),
        GlobalBuffer::zeroed(4 * n * n),
    ];
    compare_engines(
        "MatrixMul",
        mm.kernel(haocl_workloads::matmul::KERNEL_NAME).unwrap(),
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(n as i32),
            ArgValue::from_i32(n as i32),
        ],
        &buffers,
        &NdRange::d2([n as u64, n as u64], [8, 8]),
    )
    .unwrap_or_else(|e| panic!("{e}"));

    // SpMV: 256 rows, 8 nonzeros per row, CSR.
    let rows = 256usize;
    let nnz = rows * 8;
    let row_ptr: Vec<i32> = (0..=rows).map(|r| (r * 8) as i32).collect();
    let cols: Vec<i32> = (0..nnz)
        .map(|_| (splitmix(&mut state) % rows as u64) as i32)
        .collect();
    let spmv = compile(haocl_workloads::spmv::KERNEL_SOURCE).expect("spmv compiles");
    let buffers = vec![
        GlobalBuffer::from_i32(&row_ptr),
        GlobalBuffer::from_i32(&cols),
        GlobalBuffer::from_f32(&f32s(&mut state, nnz)),
        GlobalBuffer::from_f32(&f32s(&mut state, rows)),
        GlobalBuffer::zeroed(4 * rows),
    ];
    compare_engines(
        "SpMV",
        spmv.kernel(haocl_workloads::spmv::KERNEL_NAME).unwrap(),
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::global(3),
            ArgValue::global(4),
            ArgValue::from_i32(rows as i32),
        ],
        &buffers,
        &NdRange::linear(rows as u64, 64),
    )
    .unwrap_or_else(|e| panic!("{e}"));

    // BFS apply: 512 scattered depth updates.
    let count = 512usize;
    let mut updates = Vec::with_capacity(2 * count);
    for t in 0..count as i32 {
        updates.push(t);
        updates.push((splitmix(&mut state) % 32) as i32);
    }
    let bfs = compile(haocl_workloads::bfs::KERNEL_SOURCE).expect("bfs compiles");
    let buffers = vec![
        GlobalBuffer::from_i32(&vec![-1; count]),
        GlobalBuffer::from_i32(&updates),
    ];
    compare_engines(
        "BFS",
        bfs.kernel(haocl_workloads::bfs::APPLY_KERNEL_NAME).unwrap(),
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_i32(count as i32),
        ],
        &buffers,
        &NdRange::linear(count as u64, 64),
    )
    .unwrap_or_else(|e| panic!("{e}"));

    // KNN distance pass: 512 records against one query point.
    let records = 512usize;
    let knn = compile(haocl_workloads::knn::KERNEL_SOURCE).expect("knn compiles");
    let buffers = vec![
        GlobalBuffer::from_f32(&f32s(&mut state, records)),
        GlobalBuffer::from_f32(&f32s(&mut state, records)),
        GlobalBuffer::zeroed(4 * records),
    ];
    compare_engines(
        "KNN",
        knn.kernel(haocl_workloads::knn::DIST_KERNEL_NAME).unwrap(),
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_f32(3.25),
            ArgValue::from_f32(7.5),
            ArgValue::from_i32(records as i32),
        ],
        &buffers,
        &NdRange::linear(records as u64, 64),
    )
    .unwrap_or_else(|e| panic!("{e}"));

    // CFD flux: 256 cells, 4 neighbours each, 5 conserved variables.
    let cells = 256usize;
    let neigh: Vec<i32> = (0..4 * cells)
        .map(|_| (splitmix(&mut state) % cells as u64) as i32)
        .collect();
    let cfd = compile(haocl_workloads::cfd::KERNEL_SOURCE).expect("cfd compiles");
    let buffers = vec![
        GlobalBuffer::from_f32(&f32s(&mut state, 5 * cells)),
        GlobalBuffer::from_i32(&neigh),
        GlobalBuffer::zeroed(4 * 5 * cells),
    ];
    compare_engines(
        "CFD",
        cfd.kernel(haocl_workloads::cfd::KERNEL_NAME).unwrap(),
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(cells as i32),
            ArgValue::from_i32(0),
            ArgValue::from_i32(cells as i32),
        ],
        &buffers,
        &NdRange::linear(cells as u64, 64),
    )
    .unwrap_or_else(|e| panic!("{e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 32 } else { 64 }
    ))]

    /// Random shapes, random buffer contents, random (possibly
    /// out-of-range) scalar arguments — every engine must still match
    /// the oracle outcome exactly, success or error.
    #[test]
    fn engines_match_oracle_at_random_shapes(
        pick in 0usize..1_000_000,
        local_exp in 0u32..5,
        groups in 1u64..5,
        buf_bytes in prop_oneof![Just(256usize), Just(4096usize), Just(65536usize)],
        scalar in -2i64..48,
        seed in any::<u64>(),
    ) {
        let cases = corpus();
        let case = &cases[pick % cases.len()];
        let local = 1u64 << local_exp;
        let range = NdRange::linear(local * groups, local);
        for kernel in case.program.kernels() {
            let (args, buffers) = synth_args(kernel, buf_bytes, scalar, seed);
            if let Err(msg) = compare_engines(&case.origin, kernel, &args, &buffers, &range) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}
