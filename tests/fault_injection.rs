//! Failure injection: a dying Node Management Process must surface as a
//! transport error on the host without poisoning the rest of the
//! cluster, and runtime profiles must be collectable cluster-wide.

use haocl_cluster::{ClusterConfig, LocalCluster};
use haocl_kernel::KernelRegistry;
use haocl_proto::ids::NodeId;
use haocl_proto::messages::{ApiCall, ApiReply};

#[test]
fn killed_node_fails_fast_and_others_survive() {
    let mut cluster =
        LocalCluster::launch(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
    assert_eq!(cluster.live_nodes(), 3);
    // Kill node 1's daemon.
    assert!(cluster.kill_node(1));
    assert_eq!(cluster.live_nodes(), 2);
    assert!(!cluster.kill_node(5), "out-of-range kill must be refused");
    // Calls to the dead node error out…
    let err = cluster
        .host()
        .call(NodeId::new(1), ApiCall::Ping)
        .unwrap_err();
    assert!(
        err.to_string().contains("disconnected") || err.to_string().contains("backbone"),
        "unexpected error: {err}"
    );
    // …while the remaining nodes keep serving.
    for id in [0u32, 2] {
        let outcome = cluster.host().call(NodeId::new(id), ApiCall::Ping).unwrap();
        assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
    }
}

#[test]
fn killed_node_fails_in_flight_pending_calls_cleanly() {
    let mut cluster =
        LocalCluster::launch(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    // Fill node 1's pipeline, then kill it with the calls in flight.
    // Depending on how far the daemon got, each call either completed
    // (its response was already delivered) or must fail with a clean
    // transport error — never hang, never panic.
    let pending: Vec<_> = (0..8)
        .map(|_| {
            cluster
                .host()
                .submit(NodeId::new(1), ApiCall::Ping)
                .unwrap()
        })
        .collect();
    assert!(cluster.kill_node(1));
    for call in pending {
        match call.wait() {
            Ok(outcome) => assert!(matches!(outcome.reply, ApiReply::Pong { .. })),
            Err(err) => assert!(
                err.to_string().contains("disconnected") || err.to_string().contains("backbone"),
                "unexpected error: {err}"
            ),
        }
    }
    // New submissions to the dead node fail outright (at submit or on
    // the returned call), while node 0 keeps serving.
    let result = cluster
        .host()
        .submit(NodeId::new(1), ApiCall::Ping)
        .and_then(|call| call.wait());
    let err = result.unwrap_err();
    assert!(
        err.to_string().contains("disconnected") || err.to_string().contains("backbone"),
        "unexpected error: {err}"
    );
    let outcome = cluster
        .host()
        .submit(NodeId::new(0), ApiCall::Ping)
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
}

#[test]
fn cluster_profiles_reflect_completed_launches() {
    use haocl::kernel::Kernel;
    use haocl::{Buffer, CommandQueue, Context, DeviceType, MemFlags, Platform, Program};
    use haocl_kernel::NdRange;

    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void tick(__global int* a) { a[0] = a[0] + 1; }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "tick").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    // Three launches on node 0, one on node 1.
    let q0 = CommandQueue::new(&ctx, &devices[0]).unwrap();
    let q1 = CommandQueue::new(&ctx, &devices[1]).unwrap();
    for _ in 0..3 {
        q0.enqueue_nd_range_kernel(&kernel, NdRange::linear(1, 1))
            .unwrap();
    }
    q1.enqueue_nd_range_kernel(&kernel, NdRange::linear(1, 1))
        .unwrap();

    let profiles = platform.query_profiles().unwrap();
    assert_eq!(profiles.len(), 2);
    let runs_of = |node: usize| -> u64 {
        profiles[node]
            .1
            .iter()
            .filter(|e| e.kernel == "tick")
            .map(|e| e.runs)
            .sum()
    };
    assert_eq!(runs_of(0), 3);
    assert_eq!(runs_of(1), 1);
    assert!(profiles[0].1[0].mean_nanos > 0);
}
