//! Lint-corpus golden tests and the analyzer ↔ checked-VM cross-check.
//!
//! `tests/lint_corpus/{good,bad}/*.cl` each carry a `.expected` golden
//! holding the `haocl-lint` report (feature line + diagnostics, minus the
//! path prefix the binary adds). On top of the goldens, this suite pins
//! the analyzer's contract both ways:
//!
//! * every good-corpus kernel and all five paper benchmark kernels build
//!   clean under the default (enforcing) `compile()`;
//! * the analyzer is conservative, so every kernel it passes must also
//!   survive checked execution ([`vm::run_ndrange_checked`]) without
//!   tripping the dynamic barrier-divergence or `__local`-race oracles;
//! * each bad-corpus kernel with an error-severity finding fails the
//!   default build, and the dynamic oracle agrees with the analyzer's
//!   verdict kind when the kernel is run anyway.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use haocl_clc::ast::ParamType;
use haocl_clc::vm::{
    run_ndrange_checked, ArgValue, CheckConfig, ExecError, ExecErrorKind, GlobalBuffer, NdRange,
};
use haocl_clc::{
    compile, compile_with_options, AddressSpace, AnalysisMode, CompileOptions, CompiledKernel,
    ScalarType,
};

fn corpus_files(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_corpus")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "cl"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "empty corpus directory {}",
        dir.display()
    );
    files
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

const WARN_ONLY: CompileOptions = CompileOptions {
    analysis: AnalysisMode::WarnOnly,
};

/// The five paper benchmark kernel sources (Table I workloads).
fn paper_kernels() -> [(&'static str, &'static str); 5] {
    [
        ("matmul", haocl_workloads::matmul::KERNEL_SOURCE),
        ("spmv", haocl_workloads::spmv::KERNEL_SOURCE),
        ("bfs", haocl_workloads::bfs::KERNEL_SOURCE),
        ("knn", haocl_workloads::knn::KERNEL_SOURCE),
        ("cfd", haocl_workloads::cfd::KERNEL_SOURCE),
    ]
}

/// Reproduces `haocl-lint`'s per-file output without the path prefix.
fn lint_render(source: &str) -> String {
    let mut out = String::new();
    match compile_with_options(source, &WARN_ONLY) {
        Ok(program) => {
            let mut names: Vec<&str> = program.kernel_names().collect();
            names.sort_unstable();
            for name in names {
                let k = program.kernel(name).expect("listed kernel exists");
                let f = &k.report.features;
                writeln!(
                    out,
                    "kernel `{name}`: local_bytes={} barriers={} intensity={:.2} divergence={:.2}",
                    f.local_bytes, f.barrier_count, f.arithmetic_intensity, f.divergence_score
                )
                .unwrap();
                for d in k.report.diagnostics.iter() {
                    writeln!(out, "{}", d.render()).unwrap();
                }
            }
        }
        Err(e) => {
            for line in e.build_log().lines() {
                writeln!(out, "{line}").unwrap();
            }
        }
    }
    out
}

#[test]
fn corpus_diagnostics_match_goldens() {
    for sub in ["good", "bad"] {
        for path in corpus_files(sub) {
            let actual = lint_render(&read(&path));
            let expected = read(&path.with_extension("expected"));
            assert_eq!(
                actual,
                expected,
                "golden mismatch for {} — regenerate with haocl-lint if intentional",
                path.display()
            );
        }
    }
}

#[test]
fn good_corpus_and_paper_kernels_build_clean_under_enforcement() {
    for path in corpus_files("good") {
        let program = compile(&read(&path))
            .unwrap_or_else(|e| panic!("{} rejected: {}", path.display(), e.build_log()));
        for k in program.kernels() {
            assert!(
                !k.report.has_errors(),
                "{}: kernel `{}` carries analysis errors",
                path.display(),
                k.name
            );
        }
    }
    for (name, source) in paper_kernels() {
        compile(source)
            .unwrap_or_else(|e| panic!("paper kernel {name} rejected: {}", e.build_log()));
    }
}

#[test]
fn bad_corpus_verdicts_drive_the_default_build() {
    let mut error_files = 0;
    for path in corpus_files("bad") {
        let source = read(&path);
        let report = compile_with_options(&source, &WARN_ONLY)
            .unwrap_or_else(|e| panic!("{} must parse: {}", path.display(), e.build_log()));
        let has_errors = report.kernels().any(|k| k.report.has_errors());
        error_files += usize::from(has_errors);
        assert_eq!(
            compile(&source).is_err(),
            has_errors,
            "{}: enforcement must fail exactly when the analyzer finds errors",
            path.display()
        );
    }
    assert!(error_files >= 4, "bad corpus lost its error kernels");
}

/// Synthesizes a launchable argument list for `kernel`: zeroed 64 KiB
/// buffers for pointers, small scalars (4 / 1.0) so guards and loop
/// bounds stay in range of the buffers.
fn synth_args(kernel: &CompiledKernel) -> (Vec<ArgValue>, Vec<GlobalBuffer>) {
    let mut args = Vec::new();
    let mut buffers = Vec::new();
    for param in &kernel.params {
        match param {
            ParamType::Pointer(AddressSpace::Local, _) => {
                args.push(ArgValue::local_bytes(256));
            }
            ParamType::Pointer(_, _) => {
                args.push(ArgValue::global(buffers.len()));
                buffers.push(GlobalBuffer::zeroed(1 << 16));
            }
            ParamType::Scalar(scalar) => args.push(match scalar {
                ScalarType::F32 => ArgValue::from_f32(1.0),
                ScalarType::F64 => ArgValue::from_f64(1.0),
                ScalarType::I64 => ArgValue::from_i64(4),
                ScalarType::U64 => ArgValue::from_u64(4),
                ScalarType::U32 => ArgValue::from_u32(4),
                _ => ArgValue::from_i32(4),
            }),
        }
    }
    (args, buffers)
}

fn checked_run(kernel: &CompiledKernel) -> Result<(), ExecError> {
    let (args, mut buffers) = synth_args(kernel);
    // The two-dimensional kernels size their __local tiles / guards for a
    // square group; everything else launches one linear group of 8.
    let range = match kernel.name.as_str() {
        "tiled_transpose" | "matmul" => NdRange::d2([4, 4], [4, 4]),
        _ => NdRange::linear(8, 8),
    };
    run_ndrange_checked(kernel, &args, &mut buffers, &range, &CheckConfig::default()).map(|_| ())
}

#[test]
fn analyzer_clean_kernels_pass_checked_execution() {
    let mut sources: Vec<(String, String)> = corpus_files("good")
        .iter()
        .map(|p| (p.display().to_string(), read(p)))
        .collect();
    for (name, source) in paper_kernels() {
        sources.push((name.to_string(), source.to_string()));
    }
    for (origin, source) in sources {
        let program = compile(&source).expect("clean corpus builds");
        for k in program.kernels() {
            checked_run(k).unwrap_or_else(|e| {
                panic!(
                    "{origin}: analyzer-clean kernel `{}` tripped checked execution \
                     ({:?}): {e}",
                    k.name,
                    e.kind()
                )
            });
        }
    }
}

#[test]
fn bad_corpus_dynamic_oracle_agrees_with_the_analyzer() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus/bad");
    let expect = [
        (
            "divergent_barrier.cl",
            Some(ExecErrorKind::BarrierDivergence),
        ),
        ("local_race_same_elem.cl", Some(ExecErrorKind::LocalRace)),
        ("missing_barrier.cl", Some(ExecErrorKind::LocalRace)),
        // Constant OOB is caught by the plain bounds check, not a
        // dedicated oracle.
        ("oob_constant_index.cl", Some(ExecErrorKind::General)),
        // Warning-only finding: zero-initialised slots run fine.
        ("use_before_init.cl", None),
    ];
    for (file, want) in expect {
        let program = compile_with_options(&read(&dir.join(file)), &WARN_ONLY).unwrap();
        for k in program.kernels() {
            match want {
                Some(kind) => {
                    let err = checked_run(k)
                        .expect_err(&format!("{file}: kernel `{}` must fail checked", k.name));
                    assert_eq!(err.kind(), kind, "{file}: {err}");
                }
                None => checked_run(k)
                    .unwrap_or_else(|e| panic!("{file}: warning-only kernel failed: {e}")),
            }
        }
    }
}
