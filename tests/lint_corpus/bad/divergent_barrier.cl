/* The CUDA-guide classic: a barrier inside a work-item-dependent branch.
 * Work-item 0 waits forever while the rest of the group finishes. */
__kernel void divergent_barrier(__global int* a) {
    int l = get_local_id(0);
    if (l == 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    a[l] = l;
}
