/* Every work-item stores its own id to the same __local element: the
 * surviving value depends on scheduling order. */
__kernel void local_race_same_elem(__global int* out) {
    __local int s[4];
    int l = get_local_id(0);
    s[0] = l;
    out[l] = s[0];
}
