/* local_reverse without its barrier: work-item l reads s[7 - l], which
 * another work-item wrote with no intervening synchronization. */
__kernel void missing_barrier(__global const int* in, __global int* out) {
    __local int s[8];
    int l = get_local_id(0);
    s[l] = in[l] + l + 1;
    out[l] = s[7 - l];
}
