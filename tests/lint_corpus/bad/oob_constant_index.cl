/* Constant index one past the declared __local extent. */
__kernel void oob_constant_index(__global int* out) {
    __local int s[8];
    s[8] = 1;
    out[0] = s[0];
}
