/* Warning-only finding: a private variable read before any assignment.
 * The checked VM runs this fine (slots are zeroed), so the batch relies
 * on the error-severity files above to fail the lint run. */
__kernel void use_before_init(__global int* out, int c) {
    int x;
    if (c) {
        x = 1;
    }
    out[0] = x;
}
