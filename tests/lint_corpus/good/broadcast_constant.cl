/* Every work-item stores the same work-item-independent value to the
 * same __local element: benign by the "different values" race rule. */
__kernel void broadcast_constant(__global int* out) {
    __local int flag[1];
    int l = get_local_id(0);
    flag[0] = 42;
    out[l] = flag[0];
}
