/* Stage through __local with a barrier between the mismatched access
 * patterns (write s[l], read s[7 - l]) — race-free. */
__kernel void local_reverse(__global const int* in, __global int* out) {
    __local int s[8];
    int l = get_local_id(0);
    s[l] = in[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[l] = s[7 - l];
}
