/* Streaming saxpy: no barriers, no __local, uniform control flow. */
__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
