/* 2-D tiled transpose: the canonical __local tiling pattern, with the
 * barrier separating the store and the transposed load. */
__kernel void tiled_transpose(__global const float* in, __global float* out, int n) {
    __local float tile[4][4];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    tile[ly][lx] = in[gy * n + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx * n + gy] = tile[lx][ly];
}
