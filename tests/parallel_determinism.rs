//! Parallel work-group execution must be unobservable.
//!
//! The compiled engine fans independent work-groups out over OS threads
//! only when the effect prover shows group order cannot matter, so a
//! forced multi-threaded run (`HAOCL_VM_THREADS`, since CI machines may
//! report a single core) has to produce byte-identical buffers and
//! identical [`ExecStats`] to the sequential driver — every run, every
//! interleaving. Through the full platform stack the same holds for the
//! recorded span tree: virtual times, parents, names and attributes are
//! all deterministic, with the single exception of the `wall_nanos`
//! wall-clock annotation, which is stripped before comparing.

use haocl::kernel::Kernel;
use haocl::{Buffer, CommandQueue, Context, DeviceType, MemFlags, Platform, Program};
use haocl_clc::compile;
use haocl_clc::vm::{
    parallel_groups_safe, run_ndrange_with_engine, set_default_engine, ArgValue, EngineKind,
    GlobalBuffer, NdRange,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::KernelRegistry;
use haocl_obs::Span;

const SCALE_SRC: &str = r#"
    __kernel void scale(__global float* y, float a, int n) {
        int i = get_global_id(0);
        if (i < n) y[i] = y[i] * a + 1.5f;
    }
"#;

/// Forces the worker pool on for this process (the machine may report a
/// single core, which would silently take the sequential fallback).
fn force_threads() {
    std::env::set_var("HAOCL_VM_THREADS", "4");
}

#[test]
fn forced_parallel_runs_are_byte_identical_to_sequential() {
    force_threads();
    let program = compile(SCALE_SRC).expect("scale compiles");
    let kernel = program.kernel("scale").expect("scale exists");
    let args = [
        ArgValue::global(0),
        ArgValue::from_f32(1.75),
        ArgValue::from_i32(4096),
    ];
    let range = NdRange::linear(4096, 64);
    assert!(
        parallel_groups_safe(kernel, &args, &range),
        "scale must be admissible for parallel groups, or this test exercises nothing"
    );

    let data: Vec<f32> = (0..4096).map(|i| i as f32 * 0.25 - 100.0).collect();
    let mut serial = vec![GlobalBuffer::from_f32(&data)];
    let serial_stats = run_ndrange_with_engine(
        kernel,
        &args,
        &mut serial,
        &range,
        EngineKind::CompiledSerial,
    )
    .expect("serial run succeeds");

    // Repeat the parallel run: thread interleaving varies, bytes must not.
    for attempt in 0..8 {
        let mut parallel = vec![GlobalBuffer::from_f32(&data)];
        let parallel_stats =
            run_ndrange_with_engine(kernel, &args, &mut parallel, &range, EngineKind::Compiled)
                .unwrap_or_else(|e| panic!("parallel attempt {attempt} failed: {e}"));
        assert_eq!(parallel_stats, serial_stats, "attempt {attempt}: stats");
        assert_eq!(
            parallel[0].as_bytes(),
            serial[0].as_bytes(),
            "attempt {attempt}: output bytes diverged from the sequential driver"
        );
    }
}

#[test]
fn inadmissible_kernels_fall_back_and_still_match() {
    force_threads();
    // A scatter through an index buffer is not provably group-private,
    // so the parallel gate must refuse it and the compiled engine must
    // take the sequential path — same bytes as the serial driver.
    let src = r#"
        __kernel void scatter(__global int* out, __global const int* idx, int n) {
            int i = get_global_id(0);
            if (i < n) out[idx[i] % n] = i;
        }
    "#;
    let program = compile(src).expect("scatter compiles");
    let kernel = program.kernel("scatter").expect("scatter exists");
    let n = 2048i32;
    let args = [
        ArgValue::global(0),
        ArgValue::global(1),
        ArgValue::from_i32(n),
    ];
    let range = NdRange::linear(n as u64, 64);
    assert!(
        !parallel_groups_safe(kernel, &args, &range),
        "scatter must be rejected by the parallel gate"
    );
    let idx: Vec<i32> = (0..n).map(|i| (i * 7 + 3) % n).collect();
    let mut serial = vec![
        GlobalBuffer::zeroed(4 * n as usize),
        GlobalBuffer::from_i32(&idx),
    ];
    let serial_stats = run_ndrange_with_engine(
        kernel,
        &args,
        &mut serial,
        &range,
        EngineKind::CompiledSerial,
    )
    .expect("serial run succeeds");
    let mut fallback = vec![
        GlobalBuffer::zeroed(4 * n as usize),
        GlobalBuffer::from_i32(&idx),
    ];
    let fallback_stats =
        run_ndrange_with_engine(kernel, &args, &mut fallback, &range, EngineKind::Compiled)
            .expect("compiled run succeeds");
    assert_eq!(fallback_stats, serial_stats);
    assert_eq!(fallback[0].as_bytes(), serial[0].as_bytes());
}

/// Runs one traced launch through the whole platform stack on the given
/// engine and returns the output bytes plus the span tree with the
/// `wall_nanos` wall-clock annotations stripped.
fn traced_run(engine: EngineKind) -> (Vec<u8>, Vec<Span>) {
    set_default_engine(Some(engine));
    let platform =
        Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    platform.obs().set_enabled(true);
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(&platform, &devices).unwrap();
    let program = Program::from_source(&ctx, SCALE_SRC);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "scale").unwrap();
    let queue = CommandQueue::new(&ctx, &devices[0]).unwrap();

    let input: Vec<u8> = (0..4096u32)
        .flat_map(|i| (i as f32 * 0.5 - 7.0).to_le_bytes())
        .collect();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, input.len() as u64).unwrap();
    queue.enqueue_write_buffer(&buf, 0, &input).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    kernel.set_arg_f32(1, 3.5).unwrap();
    kernel.set_arg_i32(2, 4096).unwrap();
    queue
        .enqueue_nd_range_kernel(&kernel, haocl_kernel::NdRange::linear(4096, 64))
        .unwrap();
    let mut out = vec![0u8; input.len()];
    queue.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
    queue.finish();

    let mut spans = platform.obs().recorder.spans();
    set_default_engine(None);
    for span in &mut spans {
        span.attrs.retain(|(key, _)| key != "wall_nanos");
    }
    spans.sort_by_key(|s| s.id.0);
    (out, spans)
}

#[test]
fn span_trees_match_across_engines_modulo_wall_nanos() {
    force_threads();
    let (serial_out, serial_spans) = traced_run(EngineKind::CompiledSerial);
    let (parallel_out, parallel_spans) = traced_run(EngineKind::Compiled);
    let (interp_out, interp_spans) = traced_run(EngineKind::Interp);

    assert_eq!(serial_out, parallel_out, "output bytes diverge");
    assert_eq!(serial_out, interp_out, "interpreter output diverges");
    assert!(!serial_spans.is_empty(), "tracing recorded nothing");
    assert_eq!(
        serial_spans, parallel_spans,
        "span trees diverge between sequential and parallel execution"
    );
    assert_eq!(
        serial_spans, interp_spans,
        "span trees diverge between engines"
    );
}
