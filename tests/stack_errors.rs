//! Failure-path integration: errors raised deep in the stack (device
//! memory, kernel runtime, FPGA restrictions, protocol legality) must
//! surface through the public API with the right OpenCL status codes.

use haocl::kernel::Kernel;
use haocl::{
    Buffer, CommandQueue, Context, DeviceKind, DeviceType, MemFlags, Platform, Program, Status,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{KernelRegistry, NdRange};

fn gpu_cluster() -> Platform {
    Platform::cluster(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap()
}

#[test]
fn device_out_of_memory_surfaces_as_allocation_failure() {
    let platform = gpu_cluster();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let queue = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    // The P4 model has 8 GiB; a 9 GiB modeled buffer must be refused by
    // the node when it is first allocated there.
    let too_big = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 9 << 30).unwrap();
    let err = queue
        .enqueue_write_buffer_modeled(&too_big, 0, 9 << 30)
        .unwrap_err();
    assert_eq!(err.status(), Some(Status::MemObjectAllocationFailure));
}

#[test]
fn kernel_runtime_oob_surfaces_with_kernel_args_status() {
    let platform = gpu_cluster();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let queue = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void oob(__global int* a) { a[1000000] = 1; }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "oob").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    // The launch submits without blocking; the runtime failure arrives
    // with the node's response and surfaces on the event.
    let ev = queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(1, 1))
        .unwrap();
    let err = ev.wait().unwrap_err();
    assert_eq!(err.status(), Some(Status::InvalidKernelArgs));
    assert!(err.to_string().contains("out-of-bounds"));
    // The buffer survives the failed launch.
    let mut out = vec![0u8; 16];
    queue.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
}

#[test]
fn division_by_zero_in_kernel_is_reported() {
    let platform = gpu_cluster();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let queue = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void dz(__global int* a) { a[0] = 7 / a[1]; }",
    );
    program.build().unwrap();
    let kernel = Kernel::new(&program, "dz").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    let ev = queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(1, 1))
        .unwrap();
    let err = ev.wait().unwrap_err();
    assert!(err.to_string().contains("division by zero"));
}

#[test]
fn fpga_node_requires_bitstreams_end_to_end() {
    let platform =
        Platform::cluster(&ClusterConfig::fpga_cluster(1), KernelRegistry::new()).unwrap();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    // Source build refused.
    let src_prog = Program::from_source(&ctx, "__kernel void f() {}");
    assert_eq!(
        src_prog.build().unwrap_err().status(),
        Some(Status::InvalidOperation)
    );
    // Bitstream load of a kernel missing from the store fails with a log.
    let bit_prog = Program::with_bitstream_kernels(&ctx, ["not_in_store"]);
    assert_eq!(
        bit_prog.build().unwrap_err().status(),
        Some(Status::BuildProgramFailure)
    );
    assert!(bit_prog.build_log().contains("missing"));
}

#[test]
fn wrong_workgroup_geometry_is_rejected_remotely() {
    let platform = gpu_cluster();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let queue = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let program = Program::from_source(&ctx, "__kernel void f(__global int* a) { a[0] = 1; }");
    program.build().unwrap();
    let kernel = Kernel::new(&program, "f").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    // Local size 3 does not divide global size 4; the node's rejection
    // rides back on the launch's event.
    let ev = queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(4, 3))
        .unwrap();
    let err = ev.wait().unwrap_err();
    assert_eq!(err.status(), Some(Status::InvalidKernelArgs));
}

#[test]
fn barrier_divergence_detected_through_the_stack() {
    let platform = gpu_cluster();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let queue = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
    let program = Program::from_source(
        &ctx,
        "__kernel void div(__global int* a) {
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            a[get_global_id(0)] = 1;
        }",
    );
    // The static analyzer rejects this kernel at build time; waive
    // enforcement so the launch still exercises the VM's runtime
    // divergence detection through the whole stack.
    program.set_analysis_enforced(false);
    program.build().unwrap();
    let kernel = Kernel::new(&program, "div").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    let ev = queue
        .enqueue_nd_range_kernel(&kernel, NdRange::linear(2, 2))
        .unwrap();
    let err = ev.wait().unwrap_err();
    assert!(err.to_string().contains("divergence"));
}

#[test]
fn snucl_d_restrictions_hold() {
    use haocl_baselines::SnuClD;
    use haocl_workloads::cfd::CfdConfig;
    use haocl_workloads::matmul::MatmulConfig;
    use haocl_workloads::{RunOptions, Workload};
    let snucl = SnuClD::new();
    assert_eq!(
        snucl
            .run(
                &ClusterConfig::hetero_cluster(1, 1),
                &Workload::MatrixMul(MatmulConfig::test_scale()),
                &RunOptions::full(),
            )
            .unwrap_err()
            .status(),
        Some(Status::DeviceNotFound)
    );
    assert_eq!(
        snucl
            .run(
                &ClusterConfig::gpu_cluster(2),
                &Workload::Cfd(CfdConfig::test_scale()),
                &RunOptions::full(),
            )
            .unwrap_err()
            .status(),
        Some(Status::InvalidOperation)
    );
}

#[test]
fn cpu_devices_run_the_full_suite_too() {
    // The paper's nodes all carry Xeons; CPU-only execution must work.
    use haocl_workloads::{registry_with_all, RunOptions, Workload};
    let platform = Platform::local_with_registry(&[DeviceKind::Cpu], registry_with_all()).unwrap();
    for w in Workload::test_suite() {
        let report = w.run(&platform, &RunOptions::full()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }
}

#[test]
fn config_file_roundtrip_drives_a_real_cluster() {
    let text = "host 10.0.0.1:7000\n\
                node a 10.0.5.1:7100 gpu\n\
                node b 10.0.5.2:7100 cpu,fpga\n\
                bandwidth_gbps 10\n\
                latency_us 20\n";
    let config = ClusterConfig::parse(text).unwrap();
    let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
    let devices = platform.devices(DeviceType::All);
    assert_eq!(devices.len(), 3);
    assert_eq!(devices[0].kind(), DeviceKind::Gpu);
    assert_eq!(devices[1].kind(), DeviceKind::Cpu);
    assert_eq!(devices[2].kind(), DeviceKind::Fpga);
    assert_eq!(devices[2].node_name(), "b");
}
