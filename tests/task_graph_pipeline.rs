//! Fig. 1's task graph, end-to-end: a diamond of dependent kernels
//! (A → {B, C} → D) scheduled wave-by-wave through the extendable
//! scheduling component onto a mixed cluster, with data flowing through
//! shared buffers under the coherence protocol.

use haocl::auto::AutoScheduler;
use haocl::kernel::Kernel;
use haocl::{Buffer, Context, DeviceKind, DeviceType, MemFlags, Platform, Program};
use haocl_kernel::NdRange;
use haocl_sched::policies::HeteroAware;
use haocl_sched::task::{TaskGraph, TaskSpec};
use haocl_workloads::registry_with_all;

const SRC: &str = r#"
__kernel void stage_a(__global int* x) {
    int i = get_global_id(0);
    x[i] = i + 1;
}
__kernel void stage_b(__global const int* x, __global int* y) {
    int i = get_global_id(0);
    y[i] = x[i] * 2;
}
__kernel void stage_c(__global const int* x, __global int* z) {
    int i = get_global_id(0);
    z[i] = x[i] * x[i];
}
__kernel void stage_d(__global const int* y, __global const int* z, __global int* out) {
    int i = get_global_id(0);
    out[i] = y[i] + z[i];
}
"#;

#[test]
fn diamond_task_graph_executes_in_waves() {
    // The graph drives ordering; the policy drives placement.
    let mut graph = TaskGraph::new();
    let a = graph.add(TaskSpec::new("stage_a"));
    let b = graph.add(TaskSpec::new("stage_b"));
    let c = graph.add(TaskSpec::new("stage_c"));
    let d = graph.add(TaskSpec::new("stage_d"));
    graph.add_dep(a, b).unwrap();
    graph.add_dep(a, c).unwrap();
    graph.add_dep(b, d).unwrap();
    graph.add_dep(c, d).unwrap();
    let waves = graph.waves().unwrap();
    assert_eq!(waves, vec![vec![a], vec![b, c], vec![d]]);

    let platform =
        Platform::local_with_registry(&[DeviceKind::Cpu, DeviceKind::Gpu], registry_with_all())
            .unwrap();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let auto = AutoScheduler::new(&ctx, Box::new(HeteroAware::new())).unwrap();
    let program = Program::from_source(&ctx, SRC);
    program.build().unwrap();

    let n = 16u64;
    let x = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * n).unwrap();
    let y = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * n).unwrap();
    let z = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * n).unwrap();
    let out = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * n).unwrap();

    let launch = |name: &str| {
        let k = Kernel::new(&program, name).unwrap();
        match name {
            "stage_a" => {
                k.set_arg_buffer(0, &x).unwrap();
            }
            "stage_b" => {
                k.set_arg_buffer(0, &x).unwrap();
                k.set_arg_buffer(1, &y).unwrap();
            }
            "stage_c" => {
                k.set_arg_buffer(0, &x).unwrap();
                k.set_arg_buffer(1, &z).unwrap();
            }
            "stage_d" => {
                k.set_arg_buffer(0, &y).unwrap();
                k.set_arg_buffer(1, &z).unwrap();
                k.set_arg_buffer(2, &out).unwrap();
            }
            other => panic!("unknown stage {other}"),
        }
        auto.launch(&k, NdRange::linear(n, 4)).unwrap()
    };

    for wave in &waves {
        for &task in wave {
            launch(&graph.task(task).unwrap().kernel);
        }
    }

    // Read results through whichever queue last owned the buffer.
    let mut bytes = vec![0u8; (4 * n) as usize];
    auto.queues()[0]
        .enqueue_read_buffer(&out, 0, &mut bytes)
        .unwrap();
    let got: Vec<i32> = bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let expect: Vec<i32> = (0..n as i32)
        .map(|i| (i + 1) * 2 + (i + 1) * (i + 1))
        .collect();
    assert_eq!(got, expect);
}
