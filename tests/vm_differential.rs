//! Differential property testing: randomly generated kernels are
//! compiled and executed by the `haocl-clc` VM and, independently,
//! interpreted by a tiny host-side oracle. Any divergence is a compiler
//! or VM bug.

use haocl_clc::compile;
use haocl_clc::vm::{run_ndrange, ArgValue, GlobalBuffer, NdRange};
use proptest::prelude::*;

/// One step of the random program: `x = x <op> c;` (with shift amounts
/// masked and divisors kept nonzero).
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Div(i32),
    Rem(i32),
    And(i32),
    Or(i32),
    Xor(i32),
    Shl(u8),
    Shr(u8),
    /// `if (x % 2 == 0) x += a; else x -= b;`
    Branch(i32, i32),
    /// `for (int i = 0; i < n; i++) x ^= i * c;`
    Loop(u8, i32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i32>().prop_map(Step::Add),
        any::<i32>().prop_map(Step::Sub),
        (-1000i32..1000).prop_map(Step::Mul),
        (1i32..1000).prop_map(Step::Div),
        (1i32..1000).prop_map(Step::Rem),
        any::<i32>().prop_map(Step::And),
        any::<i32>().prop_map(Step::Or),
        any::<i32>().prop_map(Step::Xor),
        (0u8..31).prop_map(Step::Shl),
        (0u8..31).prop_map(Step::Shr),
        (any::<i32>(), any::<i32>()).prop_map(|(a, b)| Step::Branch(a, b)),
        ((0u8..8), (-100i32..100)).prop_map(|(n, c)| Step::Loop(n, c)),
    ]
}

/// Renders the program as OpenCL C.
fn render(steps: &[Step]) -> String {
    let mut body = String::from("int x = in[get_global_id(0)];\n");
    for s in steps {
        let line = match s {
            Step::Add(c) => format!("x = x + ({c});"),
            Step::Sub(c) => format!("x = x - ({c});"),
            Step::Mul(c) => format!("x = x * ({c});"),
            Step::Div(c) => format!("x = x / ({c});"),
            Step::Rem(c) => format!("x = x % ({c});"),
            Step::And(c) => format!("x = x & ({c});"),
            Step::Or(c) => format!("x = x | ({c});"),
            Step::Xor(c) => format!("x = x ^ ({c});"),
            Step::Shl(k) => format!("x = x << {k};"),
            Step::Shr(k) => format!("x = x >> {k};"),
            Step::Branch(a, b) => {
                format!("if (x % 2 == 0) {{ x = x + ({a}); }} else {{ x = x - ({b}); }}")
            }
            Step::Loop(n, c) => format!("for (int i = 0; i < {n}; i++) {{ x = x ^ (i * ({c})); }}"),
        };
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        "__kernel void prog(__global const int* in, __global int* out) {{\n{body}\nout[get_global_id(0)] = x;\n}}"
    )
}

/// The independent host-side oracle (C semantics: wrapping arithmetic,
/// truncating division).
fn oracle(steps: &[Step], mut x: i32) -> i32 {
    for s in steps {
        x = match *s {
            Step::Add(c) => x.wrapping_add(c),
            Step::Sub(c) => x.wrapping_sub(c),
            Step::Mul(c) => x.wrapping_mul(c),
            Step::Div(c) => x.wrapping_div(c),
            Step::Rem(c) => x.wrapping_rem(c),
            Step::And(c) => x & c,
            Step::Or(c) => x | c,
            Step::Xor(c) => x ^ c,
            Step::Shl(k) => x.wrapping_shl(u32::from(k)),
            Step::Shr(k) => x.wrapping_shr(u32::from(k)),
            Step::Branch(a, b) => {
                // C: -3 % 2 == -1, so odd negatives take the else arm too.
                if x % 2 == 0 {
                    x.wrapping_add(a)
                } else {
                    x.wrapping_sub(b)
                }
            }
            Step::Loop(n, c) => {
                for i in 0..i32::from(n) {
                    x ^= i.wrapping_mul(c);
                }
                x
            }
        };
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vm_matches_host_oracle(
        steps in proptest::collection::vec(arb_step(), 1..24),
        inputs in proptest::collection::vec(any::<i32>(), 1..8),
    ) {
        let src = render(&steps);
        let program = compile(&src).expect("generated program must compile");
        let kernel = program.kernel("prog").expect("kernel present");
        let mut bufs = vec![
            GlobalBuffer::from_i32(&inputs),
            GlobalBuffer::zeroed(inputs.len() * 4),
        ];
        run_ndrange(
            kernel,
            &[ArgValue::global(0), ArgValue::global(1)],
            &mut bufs,
            &NdRange::linear(inputs.len() as u64, 1),
        )
        .expect("generated program must execute");
        let got = bufs[1].as_i32();
        for (lane, &x0) in inputs.iter().enumerate() {
            let want = oracle(&steps, x0);
            prop_assert_eq!(
                got[lane], want,
                "lane {} diverged for program:\n{}", lane, src
            );
        }
    }
}
